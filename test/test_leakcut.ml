(* Tests for Gb_core.Leakcut (BLADE-style min-cut protect placement) and
   the cut-soundness verifier pass Gb_verify.Verifier.check_cut.

   Three layers:
   - analysis units: the plan on the real attack traces (sources,
     repairs, purity of [analyze], fence-free realization);
   - the sensitivity control: a deliberately unsound cut — the first
     repair left unrealized — MUST be rejected by [check_cut]
     (mirroring the diff oracle's mcb-suppress control);
   - end-to-end properties on the attack programs and random kernels:
     under Min_cut nothing leaks (audit FN = 0), the verifier and the
     cut checker are silent, Min_cut inserts strictly fewer fences than
     fence-on-detect, the post-apply graph has no residual Spectre
     pattern, and the differential oracle agrees with the reference
     interpreter. *)

module L = Gb_core.Leakcut
module M = Gb_core.Mitigation
module Verifier = Gb_verify.Verifier

let lat = Gb_ir.Latency.default

let res = Gb_dbt.Sched.default_resources

let v1_asm () =
  Gb_kernelc.Compile.assemble (Gb_attack.Spectre_v1.program ~secret:"ABC" ())

let v4_asm () =
  Gb_kernelc.Compile.assemble (Gb_attack.Spectre_v4.program ~secret:"ABC" ())

(* Run [asm] unsafely to heat the profile, then rebuild every hot
   region's guest trace — the same inputs the engine's backend saw. *)
let hot_gtraces asm =
  let proc =
    Gb_system.Processor.create ~config:(Gb_system.Processor.config_for M.Unsafe)
      asm
  in
  ignore (Gb_system.Processor.run proc);
  let engine = Gb_system.Processor.engine proc in
  List.filter_map
    (fun r ->
      if r.Gb_dbt.Engine.r_tier = `Trace then
        Some
          (Gb_dbt.Trace_builder.build Gb_dbt.Trace_builder.default_config
             ~mem:(Gb_system.Processor.mem proc)
             ~profile:(Gb_dbt.Engine.branch_profile engine)
             ~entry:r.Gb_dbt.Engine.r_entry)
      else None)
    (Gb_dbt.Engine.regions engine)

(* One manual Min_cut translation: build, apply (optionally leaving the
   first repair unrealized), schedule, emit. Returns the emitted trace
   and the mitigation report carrying the plan. *)
let translate_min_cut ?(unsound = false) gtrace =
  let g = Gb_ir.Build.build ~opt:(M.opt_of_mode M.Min_cut) ~lat gtrace in
  let report = M.apply ~unsound_cut:unsound M.Min_cut ~lat g in
  let cycles = Gb_dbt.Sched.schedule res ~lat g in
  let trace =
    Gb_dbt.Codegen.emit res ~n_hidden:96 ~cycles
      ~entry_pc:gtrace.Gb_ir.Gtrace.entry
      ~guest_insns:(Gb_ir.Gtrace.length gtrace)
      ~meta:Gb_vliw.Vinsn.empty_meta g
  in
  (g, report, trace)

let plan_of report =
  match report.M.cut_plan with
  | Some plan -> plan
  | None -> Alcotest.fail "Min_cut report carries no cut plan"

(* --- analysis units ----------------------------------------------------- *)

let analyze_is_pure () =
  (* [analyze] must not mutate the graph: the plan of a second run is
     identical, and nothing is constrained in between *)
  List.iter
    (fun gtrace ->
      let g = Gb_ir.Build.build ~opt:(M.opt_of_mode M.Min_cut) ~lat gtrace in
      let p1 = L.analyze ~lat g in
      let p2 = L.analyze ~lat g in
      Alcotest.(check int) "same flow" p1.L.max_flow p2.L.max_flow;
      Alcotest.(check int) "same repair count" (List.length p1.L.repairs)
        (List.length p2.L.repairs);
      List.iter
        (fun r ->
          Alcotest.(check bool) "unrealized before apply" false L.(r.r_realized))
        p1.L.repairs)
    (hot_gtraces (v1_asm ()))

let attack_plan_shape () =
  (* on the v1 attack's hot traces the analysis must find speculative
     sources and cut them without ever falling back to a fence *)
  let some_repairs = ref false in
  List.iter
    (fun gtrace ->
      let _, report, _ = translate_min_cut gtrace in
      let plan = plan_of report in
      if plan.L.repairs <> [] then begin
        some_repairs := true;
        Alcotest.(check bool) "has sources" true (plan.L.sources > 0);
        Alcotest.(check int) "repair accounting"
          (List.length plan.L.repairs)
          (plan.L.dep_reinserts + plan.L.masks + plan.L.fences);
        List.iter
          (fun r ->
            Alcotest.(check bool) "realized after apply" true L.(r.r_realized))
          plan.L.repairs
      end;
      Alcotest.(check int) "no fence fallback" 0 plan.L.fences;
      Alcotest.(check int) "report counts fences from the plan" 0
        report.M.fences_inserted)
    (hot_gtraces (v1_asm ()));
  Alcotest.(check bool) "the attack needed repairs" true !some_repairs

let post_apply_poison_clean () =
  (* after realizing the cut, the poisoning analysis must find no
     remaining speculative-load-with-poisoned-address pattern *)
  List.iter
    (fun asm ->
      List.iter
        (fun gtrace ->
          let g, _, _ = translate_min_cut gtrace in
          Alcotest.(check (list int)) "no residual pattern" []
            (Gb_core.Poison.analyze g).Gb_core.Poison.patterns)
        (hot_gtraces asm))
    [ v1_asm (); v4_asm () ]

(* --- cut-soundness pass -------------------------------------------------- *)

let sound_cut_accepted () =
  List.iter
    (fun asm ->
      List.iter
        (fun gtrace ->
          let _, report, trace = translate_min_cut gtrace in
          let plan = plan_of report in
          Alcotest.(check int) "verifier silent" 0
            (List.length (Verifier.verify trace).Verifier.violations);
          Alcotest.(check int) "cut checker silent" 0
            (List.length (Verifier.check_cut trace ~plan)))
        (hot_gtraces asm))
    [ v1_asm (); v4_asm () ]

let unsound_cut_rejected () =
  (* the sensitivity control: skip realizing the first repair; the
     emitted schedule still speculates that load, and check_cut must say
     so. Without this negative test a vacuously-empty checker would
     pass every gate. *)
  let rejected = ref false in
  List.iter
    (fun gtrace ->
      let _, report, trace = translate_min_cut ~unsound:true gtrace in
      let plan = plan_of report in
      match plan.L.repairs with
      | [] -> ()
      | first :: _ ->
        Alcotest.(check bool) "first repair left unrealized" false
          L.(first.r_realized);
        let violations = Verifier.check_cut trace ~plan in
        Alcotest.(check bool) "unsound cut flagged" true (violations <> []);
        Alcotest.(check bool) "as unrealized-cut" true
          (List.exists
             (fun v -> v.Verifier.v_kind = Verifier.Unrealized_cut)
             violations);
        Alcotest.(check bool) "attributed to the skipped load" true
          (List.exists
             (fun v -> v.Verifier.v_id = L.(first.r_node))
             violations);
        rejected := true)
    (hot_gtraces (v1_asm ()));
  Alcotest.(check bool) "at least one trace exercised the control" true
    !rejected

let residual_flow_detected () =
  (* hand-built schedule with an empty plan: a schedule-speculative load
     feeding another speculative load's address is a residual
     source->transmitter path even though no repair is unrealized. The
     guarding exit (id 1) resolves in the last bundle, so both loads
     (ids 2 and 4) execute above an unresolved exit. *)
  let stub =
    Gb_vliw.Vinsn.make_stub ~exit_id:1 ~commits:[] ~target_pc:0x2000 ()
  in
  let load ~id ~pc ~dst ~base =
    Gb_vliw.Vinsn.Load
      {
        w = Gb_riscv.Insn.D;
        unsigned = false;
        dst;
        base;
        off = 0;
        spec = None;
        id;
        pc;
        hoisted = false;
      }
  in
  let trace =
    {
      Gb_vliw.Vinsn.entry_pc = 0x1000;
      bundles =
        [|
          [| load ~id:2 ~pc:0x10 ~dst:40 ~base:(Gb_vliw.Vinsn.R 1) |];
          [|
            load ~id:4 ~pc:0x14 ~dst:41 ~base:(Gb_vliw.Vinsn.R 40);
            Gb_vliw.Vinsn.Branch
              {
                cond = Gb_riscv.Insn.BNE;
                a = Gb_vliw.Vinsn.R 5;
                b = Gb_vliw.Vinsn.R 0;
                stub = 0;
              };
          |];
        |];
      stubs = [| stub |];
      n_regs = 64;
      guest_insns = 4;
      meta = Gb_vliw.Vinsn.empty_meta;
    }
  in
  let violations = Verifier.check_cut trace ~plan:L.empty_plan in
  Alcotest.(check bool) "residual flow flagged" true
    (List.exists
       (fun v -> v.Verifier.v_kind = Verifier.Residual_flow)
       violations)

(* --- end-to-end: Min_cut mode on the real attacks ------------------------ *)

let run_mode mode asm =
  Gb_system.Processor.run_program ~audit:true
    ~config:(Gb_system.Processor.config_for mode)
    asm

let min_cut_blocks_both_attacks () =
  List.iter
    (fun (name, program) ->
      let outcome =
        Gb_attack.Runner.run ~audit:true ~mode:M.Min_cut ~secret:"SQUEAK"
          program
      in
      Alcotest.(check int)
        (name ^ " leaks nothing under min-cut")
        0 outcome.Gb_attack.Runner.correct_bytes;
      match
        outcome.Gb_attack.Runner.result.Gb_system.Processor.audit
      with
      | Some s ->
        Alcotest.(check int)
          (name ^ " audit false negatives")
          0 s.Gb_cache.Audit.false_negatives
      | None -> Alcotest.fail "audit missing")
    [
      ("v1", Gb_attack.Spectre_v1.program ~secret:"SQUEAK" ());
      ("v4", Gb_attack.Spectre_v4.program ~secret:"SQUEAK" ());
    ]

let min_cut_cheaper_than_fences () =
  (* the placement headline: same safety, strictly fewer fences than
     fence-on-detect on both attack variants (min-cut repairs re-insert
     dependencies or mask instead) *)
  List.iter
    (fun asm ->
      let mc = run_mode M.Min_cut asm in
      let fence = run_mode M.Fence_on_detect asm in
      Alcotest.(check bool) "fence mode fenced something" true
        (fence.Gb_system.Processor.fences_inserted > 0);
      Alcotest.(check bool) "min-cut uses strictly fewer fences" true
        (mc.Gb_system.Processor.fences_inserted
        < fence.Gb_system.Processor.fences_inserted);
      Alcotest.(check bool) "min-cut constrained something" true
        (mc.Gb_system.Processor.loads_constrained > 0))
    [ v1_asm (); v4_asm () ]

let diff_oracle_agrees () =
  List.iter
    (fun program ->
      let r =
        Gb_diff.Oracle.run_kernel
          ~config:(Gb_system.Processor.config_for M.Min_cut)
          ~seed:1L program
      in
      Alcotest.(check bool) "oracle clean under min-cut" true
        (Gb_diff.Oracle.clean r))
    [
      Gb_attack.Spectre_v1.program ~secret:"SQUEAK" ();
      Gb_attack.Spectre_v4.program ~secret:"SQUEAK" ();
    ]

(* --- qcheck: random kernels under Min_cut -------------------------------- *)

(* Same kernel family as test_verify's cross-validation: a biased bounds
   check guarding a double indirection, sometimes with a store. *)
let kernel_gen =
  let open QCheck.Gen in
  let open Gb_kernelc.Ast in
  let* iters = int_range 40 90 in
  let* mask = oneofl [ 7; 15 ] in
  let* bound = int_range 3 6 in
  let* stride = oneofl [ 1; 4; 8 ] in
  let* with_store = bool in
  let c n = Const (Int64.of_int n) in
  let arrays =
    [
      {
        a_name = "idx";
        a_ty = I8;
        a_dims = [ 64 ];
        a_init = Bytes (String.init 64 (fun i -> Char.chr (i * 7 land 63)));
      };
      { a_name = "probe"; a_ty = I64; a_dims = [ 512 ]; a_init = Zero };
    ]
  in
  let leak =
    [
      Let ("x", Arr ("idx", [ Var "j" ]));
      Let
        ( "y",
          Arr ("probe", [ Bin (And, Bin (Mul, Var "x", c stride), c 511) ]) );
      Set ("acc", Bin (Add, Var "acc", Var "y"));
    ]
    @
    if with_store then
      [ Arr_store ("probe", [ Bin (And, Var "x", c 511) ], Var "acc") ]
    else []
  in
  let body =
    [
      Let ("acc", c 0);
      For
        ( "i",
          c 0,
          c iters,
          [
            Let ("j", Bin (And, Var "i", c mask));
            If
              ( Bin (Lt, Var "j", c bound),
                leak,
                [ Set ("acc", Bin (Add, Var "acc", c 1)) ] );
          ] );
    ]
  in
  return { arrays; body; result = Bin (And, Var "acc", c 255) }

let qcheck_min_cut_sound =
  QCheck.Test.make ~count:6
    ~name:
      "random kernels: min-cut is verifier-silent, audit-clean, \
       oracle-identical and pattern-free"
    (QCheck.make kernel_gen)
    (fun program ->
      let asm = Gb_kernelc.Compile.assemble program in
      (* engine path: install-time verifier (verify + check_cut) silent *)
      let config =
        let config = Gb_system.Processor.config_for M.Min_cut in
        {
          config with
          Gb_system.Processor.engine =
            {
              config.Gb_system.Processor.engine with
              Gb_dbt.Engine.verify = Gb_dbt.Engine.Verify_report;
            };
        }
      in
      let r = Gb_system.Processor.run_program ~config ~audit:true asm in
      if r.Gb_system.Processor.verify_violations <> 0 then
        QCheck.Test.fail_reportf "%d verifier violation(s) under min-cut"
          r.Gb_system.Processor.verify_violations;
      (match r.Gb_system.Processor.audit with
      | Some s ->
        if s.Gb_cache.Audit.false_negatives <> 0 then
          QCheck.Test.fail_reportf "audit FN = %d under min-cut"
            s.Gb_cache.Audit.false_negatives
      | None -> QCheck.Test.fail_report "audit missing");
      (* differential oracle: DBT under min-cut == reference interpreter *)
      let oracle =
        Gb_diff.Oracle.run_kernel
          ~config:(Gb_system.Processor.config_for M.Min_cut)
          ~seed:1L program
      in
      if not (Gb_diff.Oracle.clean oracle) then
        QCheck.Test.fail_report "differential divergence under min-cut";
      (* post-apply graphs carry no residual pattern and sound cuts *)
      List.iter
        (fun gtrace ->
          let g, report, trace = translate_min_cut gtrace in
          if (Gb_core.Poison.analyze g).Gb_core.Poison.patterns <> [] then
            QCheck.Test.fail_report "residual Spectre pattern after min-cut";
          if Verifier.check_cut trace ~plan:(plan_of report) <> [] then
            QCheck.Test.fail_report "check_cut rejected a sound cut")
        (hot_gtraces asm);
      true)

let () =
  Alcotest.run "leakcut"
    [
      ( "analysis",
        [
          Alcotest.test_case "analyze is pure" `Quick analyze_is_pure;
          Alcotest.test_case "attack plan shape" `Quick attack_plan_shape;
          Alcotest.test_case "post-apply poison clean" `Quick
            post_apply_poison_clean;
        ] );
      ( "cut-soundness",
        [
          Alcotest.test_case "sound cut accepted" `Quick sound_cut_accepted;
          Alcotest.test_case "unsound cut rejected" `Quick unsound_cut_rejected;
          Alcotest.test_case "residual flow detected" `Quick
            residual_flow_detected;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "min-cut blocks both attacks" `Quick
            min_cut_blocks_both_attacks;
          Alcotest.test_case "min-cut cheaper than fences" `Quick
            min_cut_cheaper_than_fences;
          Alcotest.test_case "diff oracle agrees" `Quick diff_oracle_agrees;
          QCheck_alcotest.to_alcotest qcheck_min_cut_sound;
        ] );
    ]
