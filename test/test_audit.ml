(* Tests for the speculative-leakage audit: shadow-cache diffing and the
   commit-boundary rule at unit level, then the end-to-end property the
   paper claims — Unsafe leaves attributable transient cache state on both
   Spectre kernels while Fine_grained shows zero false negatives. *)

let cache_cfg =
  { Gb_cache.Cache.size_bytes = 4096; ways = 2; line_bytes = 64 }

let make () =
  let real = Gb_cache.Cache.create cache_cfg in
  (real, Gb_cache.Audit.create ~real ())

let touch real addr =
  ignore (Gb_cache.Cache.access real ~addr ~write:false)

(* A transient load (id past the exit boundary) whose line is in the real
   cache but not the shadow must produce exactly one attributed record. *)
let transient_line_detected () =
  let real, a = make () in
  Gb_cache.Audit.begin_run a ~region:0x1000;
  touch real 0x2000;
  Gb_cache.Audit.run_access a ~id:7 ~pc:0x44 ~addr:0x2000 ~size:8 ~write:false
    ~speculative:true ~dependent:true;
  Gb_cache.Audit.end_run a ~exit_id:3;
  let s = Gb_cache.Audit.summary a in
  Alcotest.(check int) "one transient line" 1 s.Gb_cache.Audit.transient_lines;
  Alcotest.(check int) "dependent" 1 s.Gb_cache.Audit.dependent_lines;
  Alcotest.(check int) "one leaking pc" 1 s.Gb_cache.Audit.transient_pcs

(* The same access with an id before the exit boundary is architectural:
   it replays into the shadow and no divergence is recorded. *)
let committed_access_is_silent () =
  let real, a = make () in
  Gb_cache.Audit.begin_run a ~region:0x1000;
  touch real 0x2000;
  Gb_cache.Audit.run_access a ~id:2 ~pc:0x44 ~addr:0x2000 ~size:8 ~write:false
    ~speculative:false ~dependent:false;
  Gb_cache.Audit.end_run a ~exit_id:3;
  let s = Gb_cache.Audit.summary a in
  Alcotest.(check int) "no transient line" 0 s.Gb_cache.Audit.transient_lines;
  Alcotest.(check int) "shadow converged" 0 s.Gb_cache.Audit.shadow_divergence

(* A line the architectural path already loaded is not divergent even when
   a transient load touches it too. *)
let committed_line_not_divergent () =
  let real, a = make () in
  Gb_cache.Audit.commit_access a ~addr:0x2000 ~size:8 ~write:false;
  touch real 0x2000;
  Gb_cache.Audit.begin_run a ~region:0x1000;
  Gb_cache.Audit.run_access a ~id:9 ~pc:0x44 ~addr:0x2000 ~size:8 ~write:false
    ~speculative:true ~dependent:true;
  Gb_cache.Audit.end_run a ~exit_id:3;
  let s = Gb_cache.Audit.summary a in
  Alcotest.(check int) "no divergence" 0 s.Gb_cache.Audit.transient_lines

(* Committed flushes replay into the shadow in program order: a flush
   before the boundary, then a transient reload, is a divergence again. *)
let committed_flush_replays () =
  let real, a = make () in
  Gb_cache.Audit.commit_access a ~addr:0x2000 ~size:8 ~write:false;
  touch real 0x2000;
  Gb_cache.Audit.begin_run a ~region:0x1000;
  Gb_cache.Audit.run_flush a ~id:1 ~pc:0x40 ~addr:0x2000;
  Gb_cache.Cache.flush_line real 0x2000;
  touch real 0x2000;
  Gb_cache.Audit.run_access a ~id:8 ~pc:0x48 ~addr:0x2000 ~size:8 ~write:false
    ~speculative:true ~dependent:false;
  Gb_cache.Audit.end_run a ~exit_id:4;
  let s = Gb_cache.Audit.summary a in
  Alcotest.(check int) "flush + transient reload diverges" 1
    s.Gb_cache.Audit.transient_lines;
  Alcotest.(check int) "but not dependent" 0 s.Gb_cache.Audit.dependent_lines

(* Classification: flagged + dependent evidence = TP; unflagged +
   dependent evidence = FN; flagged without evidence = over-mitigation. *)
let classification_counters () =
  let real, a = make () in
  Gb_cache.Audit.note_spec_load a ~pc:0x10;
  Gb_cache.Audit.note_spec_load a ~pc:0x20;
  Gb_cache.Audit.note_spec_load a ~pc:0x30;
  Gb_cache.Audit.note_flagged a ~pc:0x10;
  Gb_cache.Audit.note_flagged a ~pc:0x30;
  Gb_cache.Audit.begin_run a ~region:0;
  touch real 0x1000;
  touch real 0x2000;
  Gb_cache.Audit.run_access a ~id:10 ~pc:0x10 ~addr:0x1000 ~size:8
    ~write:false ~speculative:true ~dependent:true;
  Gb_cache.Audit.run_access a ~id:11 ~pc:0x20 ~addr:0x2000 ~size:8
    ~write:false ~speculative:true ~dependent:true;
  Gb_cache.Audit.end_run a ~exit_id:5;
  let s = Gb_cache.Audit.summary a in
  Alcotest.(check int) "tp" 1 s.Gb_cache.Audit.true_positives;
  Alcotest.(check int) "fn" 1 s.Gb_cache.Audit.false_negatives;
  Alcotest.(check int) "over" 1 s.Gb_cache.Audit.over_mitigations;
  Alcotest.(check (float 1e-9)) "precision" 0.5 s.Gb_cache.Audit.precision;
  Alcotest.(check (float 1e-9)) "recall" 0.5 s.Gb_cache.Audit.recall;
  Alcotest.(check (float 1e-9)) "over-fencing" 0.5
    s.Gb_cache.Audit.over_fencing_rate

(* One record per (pc, line) per run, however many times the loop body
   re-touches it inside the run. *)
let per_run_dedup () =
  let real, a = make () in
  Gb_cache.Audit.begin_run a ~region:0;
  touch real 0x3000;
  for i = 0 to 4 do
    Gb_cache.Audit.run_access a ~id:(20 + i) ~pc:0x44 ~addr:0x3000 ~size:8
      ~write:false ~speculative:true ~dependent:true
  done;
  Gb_cache.Audit.end_run a ~exit_id:3;
  let s = Gb_cache.Audit.summary a in
  Alcotest.(check int) "deduped within the run" 1
    s.Gb_cache.Audit.transient_lines

let summary_json_roundtrip () =
  let real, a = make () in
  Gb_cache.Audit.note_flagged a ~pc:0x10;
  Gb_cache.Audit.begin_run a ~region:0;
  touch real 0x1000;
  Gb_cache.Audit.run_access a ~id:10 ~pc:0x10 ~addr:0x1000 ~size:8
    ~write:false ~speculative:true ~dependent:true;
  Gb_cache.Audit.end_run a ~exit_id:5;
  let json =
    Gb_util.Json.to_string
      (Gb_cache.Audit.summary_to_json (Gb_cache.Audit.summary a))
  in
  match Gb_util.Json.of_string json with
  | Error e -> Alcotest.failf "summary json does not parse: %s" e
  | Ok (Gb_util.Json.Obj fields) ->
    Alcotest.(check bool) "has precision" true (List.mem_assoc "precision" fields);
    Alcotest.(check bool) "has false_negatives" true
      (List.mem_assoc "false_negatives" fields)
  | Ok _ -> Alcotest.fail "summary json is not an object"

(* --- end-to-end properties on the real attack kernels --- *)

let secret = "GB!"

let audited mode program =
  let o = Gb_attack.Runner.run ~audit:true ~mode ~secret program in
  match o.Gb_attack.Runner.result.Gb_system.Processor.audit with
  | Some s -> (o, s)
  | None -> Alcotest.fail "audit summary missing from audited run"

let kernels () =
  [
    ("v1", Gb_attack.Spectre_v1.program ~secret ());
    ("v4", Gb_attack.Spectre_v4.program ~secret ());
  ]

let unsafe_leaves_transient_state () =
  List.iter
    (fun (name, program) ->
      let _, s = audited Gb_core.Mitigation.Unsafe program in
      Alcotest.(check bool) (name ^ ": transient lines under Unsafe") true
        (s.Gb_cache.Audit.transient_lines > 0);
      Alcotest.(check bool) (name ^ ": dependent transient lines") true
        (s.Gb_cache.Audit.dependent_lines > 0);
      Alcotest.(check bool) (name ^ ": detector sees the leak (tp > 0)") true
        (s.Gb_cache.Audit.true_positives > 0);
      Alcotest.(check int) (name ^ ": no detector miss") 0
        s.Gb_cache.Audit.false_negatives)
    (kernels ())

let fine_grained_zero_false_negatives () =
  List.iter
    (fun (name, program) ->
      let o, s = audited Gb_core.Mitigation.Fine_grained program in
      Alcotest.(check int) (name ^ ": zero false negatives") 0
        s.Gb_cache.Audit.false_negatives;
      Alcotest.(check bool) (name ^ ": detector flagged something") true
        (s.Gb_cache.Audit.flagged > 0);
      Alcotest.(check int) (name ^ ": and the attack recovered nothing") 0
        o.Gb_attack.Runner.correct_bytes)
    (kernels ())

let audit_does_not_change_execution () =
  (* attaching the audit must be a pure observer: same cycles, same
     recovered bytes *)
  let program = Gb_attack.Spectre_v1.program ~secret () in
  let plain = Gb_attack.Runner.run ~mode:Gb_core.Mitigation.Unsafe ~secret program in
  let watched =
    Gb_attack.Runner.run ~audit:true ~mode:Gb_core.Mitigation.Unsafe ~secret
      program
  in
  Alcotest.(check string) "same recovery" plain.Gb_attack.Runner.recovered
    watched.Gb_attack.Runner.recovered;
  Alcotest.(check int64) "same cycle count"
    plain.Gb_attack.Runner.result.Gb_system.Processor.cycles
    watched.Gb_attack.Runner.result.Gb_system.Processor.cycles

let audit_counters_reproducible () =
  let program = Gb_attack.Spectre_v1.program ~secret () in
  let run () =
    let _, s = audited Gb_core.Mitigation.Unsafe program in
    ( s.Gb_cache.Audit.transient_lines,
      s.Gb_cache.Audit.dependent_lines,
      s.Gb_cache.Audit.true_positives )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-for-bit reproducible" true (a = b)

let bench_leakage_json_roundtrip () =
  (* the exact document bench/main.exe --json-out writes, on an audited
     E1 matrix, must survive our own parser *)
  let poc =
    Gb_experiments.Experiments.e1_poc_matrix ~secret ~audit:true ~seed:1L ()
  in
  let doc = Gb_experiments.Experiments.leakage_json ~rows:[] poc in
  match Gb_util.Json.of_string (Gb_util.Json.to_string_pretty doc) with
  | Error e -> Alcotest.failf "leakage json does not parse: %s" e
  | Ok (Gb_util.Json.Obj fields) -> (
    match List.assoc_opt "attacks" fields with
    | Some (Gb_util.Json.List attacks) ->
      Alcotest.(check int) "one row per variant x mode" 10 (List.length attacks)
    | _ -> Alcotest.fail "leakage json has no attacks list")
  | Ok _ -> Alcotest.fail "leakage json is not an object"

let qcheck_commit_boundary =
  (* property: for a random split point, every buffered access is counted
     exactly once — either replayed (committed) or diffed (transient) —
     so transient records never exceed the accesses past the boundary *)
  QCheck.Test.make ~name:"commit boundary partitions the run" ~count:50
    QCheck.(pair (int_range 1 20) (int_range 0 20))
    (fun (n_ops, boundary) ->
      let real, a = make () in
      Gb_cache.Audit.begin_run a ~region:0;
      for i = 0 to n_ops - 1 do
        let addr = 0x4000 + (i * 64) in
        touch real addr;
        Gb_cache.Audit.run_access a ~id:i ~pc:i ~addr ~size:8 ~write:false
          ~speculative:true ~dependent:false
      done;
      Gb_cache.Audit.end_run a ~exit_id:boundary;
      let s = Gb_cache.Audit.summary a in
      let expected_transient = max 0 (n_ops - boundary) in
      s.Gb_cache.Audit.transient_lines = expected_transient)

let () =
  Alcotest.run "audit"
    [
      ( "shadow-diff",
        [
          Alcotest.test_case "transient line detected" `Quick
            transient_line_detected;
          Alcotest.test_case "committed access is silent" `Quick
            committed_access_is_silent;
          Alcotest.test_case "committed line not divergent" `Quick
            committed_line_not_divergent;
          Alcotest.test_case "committed flush replays" `Quick
            committed_flush_replays;
          Alcotest.test_case "per-run dedup" `Quick per_run_dedup;
          QCheck_alcotest.to_alcotest qcheck_commit_boundary;
        ] );
      ( "classification",
        [
          Alcotest.test_case "tp/fn/over counters" `Quick
            classification_counters;
          Alcotest.test_case "summary json round-trips" `Quick
            summary_json_roundtrip;
          Alcotest.test_case "bench leakage json round-trips" `Quick
            bench_leakage_json_roundtrip;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "Unsafe leaves transient state (v1+v4)" `Quick
            unsafe_leaves_transient_state;
          Alcotest.test_case "Fine_grained: zero false negatives" `Quick
            fine_grained_zero_false_negatives;
          Alcotest.test_case "audit is a pure observer" `Quick
            audit_does_not_change_execution;
          Alcotest.test_case "audit counters reproducible" `Quick
            audit_counters_reproducible;
        ] );
    ]
