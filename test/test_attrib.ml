(* Cycle-attribution ledger: conservation, cause classification, the
   explained-slowdown acceptance property, and the observability
   satellites (p95 export, ring-wrap accounting). *)

module At = Gb_obs.Attrib

let with_chain config chain =
  let engine = config.Gb_system.Processor.engine in
  {
    config with
    Gb_system.Processor.engine =
      {
        engine with
        Gb_dbt.Engine.cache =
          { engine.Gb_dbt.Engine.cache with Gb_dbt.Code_cache.chain };
      };
  }

(* run [asm] under [mode]; returns (result, ledger) with conservation
   already re-checked explicitly (the processor asserts it too) *)
let run_attributed ?(chain = true) mode asm =
  let obs = Gb_obs.Sink.create ~attrib:true () in
  let config = with_chain (Gb_system.Processor.config_for mode) chain in
  let r = Gb_system.Processor.run_program ~config ~obs asm in
  let a = Option.get (Gb_obs.Sink.attrib obs) in
  (match At.check a ~cycles:r.Gb_system.Processor.cycles with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (r, a)

let units a cause = List.assoc cause (At.by_cause a)

let v1_asm =
  lazy
    (Gb_kernelc.Compile.assemble
       (Gb_attack.Spectre_v1.program ~secret:"S3cr3t!" ()))

(* --- cause taxonomy ----------------------------------------------------- *)

let test_cause_names () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (At.cause_name c ^ " round-trips")
        true
        (At.cause_of_name (At.cause_name c) = Some c))
    At.all_causes;
  Alcotest.(check bool) "unknown name" true (At.cause_of_name "bogus" = None)

let test_scale_divisible () =
  for width = 1 to 16 do
    Alcotest.(check int)
      (Printf.sprintf "scale %% %d" width)
      0 (At.scale mod width)
  done

(* --- ledger mechanics ---------------------------------------------------- *)

let test_transfer_conserves () =
  let a = At.create () in
  At.enter a ~entry:0x100;
  At.add_here_cycles a At.Dispatcher_exit ~pc:0x200 ~cycles:4;
  At.add_here_cycles a At.Committed_work ~pc:0x100 ~cycles:10;
  let before = At.total_units a in
  At.transfer a ~from_:At.Dispatcher_exit ~to_:At.Chain_transfer ~pc:0x200
    ~cycles:4;
  Alcotest.(check int) "total unchanged" before (At.total_units a);
  Alcotest.(check int) "source emptied" 0 (units a At.Dispatcher_exit);
  Alcotest.(check int) "target filled" (4 * At.scale)
    (units a At.Chain_transfer);
  match At.check a ~cycles:14L with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_check_detects_drift () =
  let a = At.create () in
  At.add_cycles a At.Committed_work ~tier:At.Interp ~trace:0 ~pc:0 ~cycles:3;
  (match At.check a ~cycles:3L with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "drift detected" true
    (match At.check a ~cycles:4L with Error _ -> true | Ok () -> false)

let test_folded_format () =
  let a = At.create () in
  At.set_tier a ~entry:0x100 At.Trace;
  At.enter a ~entry:0x100;
  At.add_here_cycles a At.Committed_work ~pc:0x100 ~cycles:7;
  let buf = Buffer.create 64 in
  At.folded a ~kernel:"k" ~top:0 buf;
  let line = String.trim (Buffer.contents buf) in
  Alcotest.(check string) "folded stack line"
    (Printf.sprintf "k;trace;trace_0x100;pc_0x100;committed-work %d"
       (7 * At.scale))
    line

(* --- end-to-end attribution --------------------------------------------- *)

let test_v1_fence_vs_unsafe () =
  let asm = Lazy.force v1_asm in
  let ru, au = run_attributed Gb_core.Mitigation.Unsafe asm in
  let rf, af = run_attributed Gb_core.Mitigation.Fence_on_detect asm in
  Alcotest.(check int) "no fence-stall under Unsafe" 0 (units au At.Fence_stall);
  Alcotest.(check bool) "fence-stall under fence-on-detect" true
    (units af At.Fence_stall > 0);
  (* the acceptance criterion: >= 95% of the fence-vs-unsafe cycle delta
     is explained by the fence-stall + lost-ILP buckets *)
  let delta_units c = units af c - units au c in
  let explained =
    delta_units At.Fence_stall + delta_units At.Nospec_serialization
  in
  let total =
    Int64.to_int
      (Int64.mul
         (Int64.sub rf.Gb_system.Processor.cycles
            ru.Gb_system.Processor.cycles)
         (Int64.of_int At.scale))
  in
  Alcotest.(check bool) "slowdown exists" true (total > 0);
  let share = float_of_int explained /. float_of_int total in
  if share < 0.95 then
    Alcotest.failf "only %.1f%% of the slowdown delta explained"
      (100. *. share)

let test_v1_rollback_and_tiers () =
  let asm = Lazy.force v1_asm in
  let r, a = run_attributed Gb_core.Mitigation.Unsafe asm in
  Alcotest.(check bool) "interp cycles attributed" true
    (units a At.Interp_fallback > 0);
  Alcotest.(check bool) "committed work attributed" true
    (units a At.Committed_work > 0);
  (if Int64.compare r.Gb_system.Processor.rollbacks 0L > 0 then
     Alcotest.(check bool) "rollback penalty attributed" true
       (units a At.Mcb_rollback > 0));
  (* every v4-style conflict notes the store pc that flagged it *)
  if r.Gb_system.Processor.rollbacks > 0L then
    Alcotest.(check bool) "conflict pcs recorded" true
      (At.conflict_pcs a <> [])

let test_chain_reclassifies_exits () =
  let asm = Lazy.force v1_asm in
  let _, chained = run_attributed ~chain:true Gb_core.Mitigation.Unsafe asm in
  let _, unchained =
    run_attributed ~chain:false Gb_core.Mitigation.Unsafe asm
  in
  Alcotest.(check bool) "chained transfers attributed" true
    (units chained At.Chain_transfer > 0);
  Alcotest.(check int) "no chain-transfer without chaining" 0
    (units unchained At.Chain_transfer);
  (* chaining only relabels dispatcher-exit cycles; the combined exit
     cost is identical because the simulated clock is *)
  Alcotest.(check int) "exit cost conserved across chaining"
    (units unchained At.Dispatcher_exit + units unchained At.Chain_transfer)
    (units chained At.Dispatcher_exit + units chained At.Chain_transfer)

let test_shares_and_json () =
  let asm = Lazy.force v1_asm in
  let _, a = run_attributed Gb_core.Mitigation.Fence_on_detect asm in
  let shares = At.cause_shares a in
  Alcotest.(check int) "every cause present" (List.length At.all_causes)
    (List.length shares);
  let sum = List.fold_left (fun acc (_, s) -> acc +. s) 0. shares in
  Alcotest.(check bool) "shares sum to 1" true (abs_float (sum -. 1.) < 1e-9);
  (* JSON renders and round-trips *)
  let json = Gb_util.Json.to_string (At.to_json a) in
  ignore (Gb_util.Json.of_string json)

(* --- satellites ---------------------------------------------------------- *)

let test_metrics_p95 () =
  let m = Gb_obs.Metrics.create () in
  for i = 1 to 100 do
    Gb_obs.Metrics.observe m "h" (float_of_int i)
  done;
  let s = Option.get (Gb_obs.Metrics.histogram_snapshot m "h") in
  Alcotest.(check bool) "p95 ordered" true
    (s.Gb_obs.Metrics.h_p90 <= s.Gb_obs.Metrics.h_p95
    && s.Gb_obs.Metrics.h_p95 <= s.Gb_obs.Metrics.h_p99);
  let json = Gb_util.Json.to_string (Gb_obs.Metrics.to_json m) in
  Alcotest.(check bool) "p95 serialized" true
    (let sub = "\"p95\"" in
     let n = String.length json and k = String.length sub in
     let rec find i = i + k <= n && (String.sub json i k = sub || find (i + 1)) in
     find 0)

let test_ring_dropped_accounting () =
  let obs = Gb_obs.Sink.create ~ring_capacity:4 () in
  for i = 1 to 10 do
    Gb_obs.Sink.event obs ~pc:i Gb_obs.Event.Rollback
  done;
  Alcotest.(check int) "dropped count" 6 (Gb_obs.Sink.dropped_events obs);
  let m = Option.get (Gb_obs.Sink.metrics obs) in
  Alcotest.(check int) "ring.dropped counter" 6
    (Gb_obs.Metrics.counter_value m "ring.dropped");
  match Gb_obs.Sink.trace_json obs with
  | Gb_util.Json.Obj fields ->
    Alcotest.(check bool) "droppedEvents in trace" true
      (List.assoc_opt "droppedEvents" fields = Some (Gb_util.Json.Int 6))
  | _ -> Alcotest.fail "trace_json not an object"

(* --- qcheck: conservation over random kernels × modes × chaining -------- *)

let kernel_gen =
  let open QCheck.Gen in
  let open Gb_kernelc.Ast in
  let c n = Const (Int64.of_int n) in
  let var = oneofl [ "a"; "b"; "c"; "d" ] in
  let leaf =
    oneof
      [ map (fun n -> c (n land 0xff)) small_nat; map (fun v -> Var v) var ]
  in
  let expr =
    sized_size (int_range 0 3)
    @@ fix (fun self n ->
           if n = 0 then leaf
           else
             oneof
               [
                 leaf;
                 map3
                   (fun op l r -> Bin (op, l, r))
                   (oneofl [ Add; Sub; Mul; And; Or; Xor ])
                   (self (n / 2)) (self (n / 2));
               ])
  in
  let stmt =
    oneof
      [
        map2 (fun v e -> Set (v, e)) var expr;
        map2
          (fun i e -> Arr_store ("buf", [ c (i land 7) ], e))
          small_nat expr;
        map2
          (fun e t -> If (Bin (Lt, Var "i", e), t, [ Set ("d", c 9) ]))
          expr
          (map (fun e -> [ Set ("b", e) ]) expr);
      ]
  in
  let body = list_size (int_range 1 5) stmt in
  map
    (fun stmts ->
      {
        arrays = [ { a_name = "buf"; a_ty = I64; a_dims = [ 8 ]; a_init = Zero } ];
        body =
          [
            Let ("a", c 1);
            Let ("b", c 2);
            Let ("c", c 3);
            Let ("d", c 4);
            For
              ( "i", c 0, c 64,
                stmts
                @ [
                    Set ("a", Bin (Add, Var "a", Var "i"));
                    Arr_store ("buf", [ Bin (And, Var "i", c 7) ], Var "a");
                  ] );
            Set ("a", Bin (Add, Var "a", Arr ("buf", [ c 3 ])));
          ];
        result = Bin (And, Var "a", c 255);
      })
    body

let prop_conservation =
  QCheck.Test.make ~count:25
    ~name:
      "random kernels x modes x chaining: sum(buckets) = cycles, \
       fence-stall = 0 under Unsafe"
    (QCheck.make kernel_gen)
    (fun kernel ->
      let asm = Gb_kernelc.Compile.assemble kernel in
      List.iter
        (fun mode ->
          List.iter
            (fun chain ->
              let r, a = run_attributed ~chain mode asm in
              (match At.check a ~cycles:r.Gb_system.Processor.cycles with
              | Ok () -> ()
              | Error msg ->
                QCheck.Test.fail_reportf "mode %s chain %b: %s"
                  (Gb_core.Mitigation.mode_name mode)
                  chain msg);
              if
                mode = Gb_core.Mitigation.Unsafe
                && units a At.Fence_stall <> 0
              then
                QCheck.Test.fail_reportf
                  "chain %b: %d fence-stall units under Unsafe" chain
                  (units a At.Fence_stall))
            [ true; false ])
        Gb_core.Mitigation.all_modes;
      true)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_conservation ] in
  Alcotest.run "attrib"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "cause names round-trip" `Quick test_cause_names;
          Alcotest.test_case "scale divisible by widths" `Quick
            test_scale_divisible;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "transfer conserves" `Quick test_transfer_conserves;
          Alcotest.test_case "check detects drift" `Quick
            test_check_detects_drift;
          Alcotest.test_case "folded format" `Quick test_folded_format;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "v1: fence delta explained" `Quick
            test_v1_fence_vs_unsafe;
          Alcotest.test_case "v1: tiers and rollbacks" `Quick
            test_v1_rollback_and_tiers;
          Alcotest.test_case "chaining reclassifies exits" `Quick
            test_chain_reclassifies_exits;
          Alcotest.test_case "shares and JSON" `Quick test_shares_and_json;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "metrics p95" `Quick test_metrics_p95;
          Alcotest.test_case "ring dropped accounting" `Quick
            test_ring_dropped_accounting;
        ] );
      ("conservation", qsuite);
    ]
