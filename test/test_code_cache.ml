(* Tests for the bounded code cache: capacity/LRU accounting, the
   chaining invariant (no link may survive the eviction, invalidation or
   replacement of either endpoint), mode compatibility — then end to end,
   that eviction churn and chaining change nothing architectural and the
   leakage audit still sees every speculative access. *)

open Gb_dbt

let h n = Gb_vliw.Vinsn.guest_regs + n

(* A trace of [bundles] VLIW bundles with one exit stub per element of
   [targets]; the stub body is irrelevant to the cache. *)
let mk_trace ?(bundles = 4) ~pc targets =
  let stub target_pc =
    Gb_vliw.Vinsn.make_stub
      ~commits:[ (Gb_riscv.Reg.a0, Gb_vliw.Vinsn.R (h 0)) ]
      ~target_pc ()
  in
  {
    Gb_vliw.Vinsn.entry_pc = pc;
    bundles =
      Array.make bundles [| Gb_vliw.Vinsn.Exit { stub = 0 }; Gb_vliw.Vinsn.Nop |];
    stubs = Array.of_list (List.map stub targets);
    n_regs = 64;
    guest_insns = bundles;
    meta = Gb_vliw.Vinsn.empty_meta;
  }

let cache ?(capacity = 16) ?(chain = true) () =
  Code_cache.create { Code_cache.capacity; chain }

let insert ?(tier = Code_cache.Trace) ?(mode = Code_cache.Nonspec)
    ?bundles cc ~pc targets =
  Code_cache.insert cc ~pc ~tier ~mode (mk_trace ?bundles ~pc targets)

(* --- capacity and LRU --- *)

let capacity_respected () =
  let cc = cache ~capacity:10 () in
  let _ = insert cc ~pc:0x100 [ 0x200 ] in
  let _ = insert cc ~pc:0x200 [ 0x300 ] in
  Alcotest.(check int) "two fit" 8 (Code_cache.used_bundles cc);
  let _ = insert cc ~pc:0x300 [ 0x100 ] in
  Alcotest.(check bool) "budget kept" true (Code_cache.used_bundles cc <= 10);
  Alcotest.(check int) "one eviction" 1 (Code_cache.stats cc).Code_cache.evictions

let lru_victim () =
  let cc = cache ~capacity:10 () in
  let _ = insert cc ~pc:0x100 [] in
  let _ = insert cc ~pc:0x200 [] in
  (* touch 0x100 so 0x200 is the least recently used *)
  ignore (Code_cache.find cc 0x100);
  let _ = insert cc ~pc:0x300 [] in
  Alcotest.(check bool) "recent survives" true (Code_cache.peek cc 0x100 <> None);
  Alcotest.(check bool) "lru evicted" true (Code_cache.peek cc 0x200 = None)

let replacement_is_not_eviction () =
  let cc = cache ~capacity:16 () in
  let _ = insert cc ~pc:0x100 ~bundles:4 [] in
  let _ = insert cc ~pc:0x100 ~bundles:6 [] in
  Alcotest.(check int) "no eviction counted" 0
    (Code_cache.stats cc).Code_cache.evictions;
  Alcotest.(check int) "usage is the replacement's" 6
    (Code_cache.used_bundles cc)

let on_evict_fires_with_tier () =
  let cc = cache ~capacity:8 () in
  let seen = ref [] in
  Code_cache.set_on_evict cc (fun ~pc tier -> seen := (pc, tier) :: !seen);
  let _ = insert cc ~pc:0x100 ~tier:Code_cache.Block [] in
  let _ = insert cc ~pc:0x200 [] in
  (* replacement must not fire the hook... *)
  let _ = insert cc ~pc:0x200 [] in
  Alcotest.(check int) "replacement is silent" 0 (List.length !seen);
  (* ...capacity pressure must, reporting the victim's tier *)
  let _ = insert cc ~pc:0x300 [] in
  Alcotest.(check (list (pair int bool))) "only the capacity eviction"
    [ (0x100, true) ]
    (List.map (fun (pc, t) -> (pc, t = Code_cache.Block)) !seen)

let generations_are_fresh () =
  let cc = cache () in
  let a = insert cc ~pc:0x100 [] in
  let b = insert cc ~pc:0x100 [] in
  Alcotest.(check bool) "retranslation gets a new generation" true
    (b.Code_cache.e_gen > a.Code_cache.e_gen)

(* --- chaining invariant --- *)

let link_and_break_on_invalidate () =
  let cc = cache () in
  let a = insert cc ~pc:0x100 [ 0x200 ] in
  let b = insert cc ~pc:0x200 [ 0x100 ] in
  Alcotest.(check bool) "a->b links" true (Code_cache.link cc ~src:a ~stub:0 ~dst:b);
  Alcotest.(check bool) "b->a links" true (Code_cache.link cc ~src:b ~stub:0 ~dst:a);
  Alcotest.(check bool) "well linked" true (Code_cache.well_linked cc);
  Code_cache.invalidate cc 0x200;
  Alcotest.(check bool) "a's stub unlinked" true
    (a.Code_cache.e_trace.Gb_vliw.Vinsn.stubs.(0).Gb_vliw.Vinsn.chain = None);
  Alcotest.(check bool) "still well linked" true (Code_cache.well_linked cc);
  Alcotest.(check int) "both directions broken" 2
    (Code_cache.stats cc).Code_cache.chain_breaks

let eviction_unlinks () =
  let cc = cache ~capacity:8 () in
  let a = insert cc ~pc:0x100 [ 0x200 ] in
  let b = insert cc ~pc:0x200 [ 0x100 ] in
  ignore (Code_cache.link cc ~src:a ~stub:0 ~dst:b);
  ignore (Code_cache.link cc ~src:b ~stub:0 ~dst:a);
  ignore (Code_cache.find cc 0x200);
  (* evicts 0x100, the LRU entry *)
  let _ = insert cc ~pc:0x300 [] in
  Alcotest.(check bool) "victim gone" true (Code_cache.peek cc 0x100 = None);
  Alcotest.(check bool) "survivor's link severed" true
    (b.Code_cache.e_trace.Gb_vliw.Vinsn.stubs.(0).Gb_vliw.Vinsn.chain = None);
  Alcotest.(check bool) "well linked" true (Code_cache.well_linked cc)

let replacement_unlinks_predecessors () =
  let cc = cache () in
  let a = insert cc ~pc:0x100 [ 0x200 ] in
  let b = insert cc ~pc:0x200 [] in
  ignore (Code_cache.link cc ~src:a ~stub:0 ~dst:b);
  (* tier promotion of the target: the old object is dropped, so the
     link into it must not survive *)
  let _ = insert cc ~pc:0x200 [] in
  Alcotest.(check bool) "predecessor unlinked" true
    (a.Code_cache.e_trace.Gb_vliw.Vinsn.stubs.(0).Gb_vliw.Vinsn.chain = None);
  Alcotest.(check bool) "well linked" true (Code_cache.well_linked cc)

let link_guards () =
  let cc = cache () in
  let a = insert cc ~pc:0x100 [ 0x200 ] in
  let b = insert cc ~pc:0x200 [] in
  let c = insert cc ~pc:0x300 [] in
  Alcotest.(check bool) "stub target must equal dst pc" false
    (Code_cache.link cc ~src:a ~stub:0 ~dst:c);
  Alcotest.(check bool) "stub index bounds" false
    (Code_cache.link cc ~src:a ~stub:5 ~dst:b);
  let off = cache ~chain:false () in
  let a' = insert off ~pc:0x100 [ 0x200 ] in
  let b' = insert off ~pc:0x200 [] in
  Alcotest.(check bool) "chaining disabled" false
    (Code_cache.link off ~src:a' ~stub:0 ~dst:b')

let mode_compatibility () =
  let fine = Code_cache.Mitigated Gb_core.Mitigation.Fine_grained in
  let fence = Code_cache.Mitigated Gb_core.Mitigation.Fence_on_detect in
  let cc = cache () in
  let src m = insert cc ~mode:m ~pc:0x100 [ 0x200 ] in
  let dst m = insert cc ~mode:m ~pc:0x200 [] in
  let ok s d = Code_cache.link cc ~src:(src s) ~stub:0 ~dst:(dst d) in
  Alcotest.(check bool) "equal modes chain" true (ok fine fine);
  Alcotest.(check bool) "mixed modes do not" false (ok fine fence);
  Alcotest.(check bool) "nonspec target always safe" true
    (ok fine Code_cache.Nonspec);
  Alcotest.(check bool) "nonspec source is mode-neutral" true
    (ok Code_cache.Nonspec fence)

(* --- the invariant under arbitrary operation sequences --- *)

let pcs = [| 0x100; 0x200; 0x300; 0x400; 0x500; 0x600 |]

(* every trace's stubs target the two next pcs, so random linking has
   plenty of valid edges to create *)
let targets_of i =
  [ pcs.((i + 1) mod Array.length pcs); pcs.((i + 2) mod Array.length pcs) ]

type op = Insert of int | Find of int | Invalidate of int | Link of int * int

let arb_ops =
  let open QCheck.Gen in
  let n = Array.length pcs in
  let op =
    frequency
      [
        (4, map (fun i -> Insert i) (int_bound (n - 1)));
        (2, map (fun i -> Find i) (int_bound (n - 1)));
        (1, map (fun i -> Invalidate i) (int_bound (n - 1)));
        (4, map2 (fun i s -> Link (i, s)) (int_bound (n - 1)) (int_bound 1));
      ]
  in
  QCheck.make
    ~print:(fun ops -> string_of_int (List.length ops) ^ " ops")
    (list_size (int_range 1 60) op)

let qcheck_well_linked =
  QCheck.Test.make ~count:500
    ~name:"chain links never outlive either endpoint"
    arb_ops
    (fun ops ->
      (* capacity of 12 bundles = 3 live entries: inserts evict constantly *)
      let cc = cache ~capacity:12 () in
      List.iter
        (fun op ->
          (match op with
          | Insert i -> ignore (insert cc ~pc:pcs.(i) (targets_of i))
          | Find i -> ignore (Code_cache.find cc pcs.(i))
          | Invalidate i -> Code_cache.invalidate cc pcs.(i)
          | Link (i, s) -> (
            match
              ( Code_cache.peek cc pcs.(i),
                Code_cache.peek cc (List.nth (targets_of i) s) )
            with
            | Some src, Some dst ->
              ignore (Code_cache.link cc ~src ~stub:s ~dst)
            | _ -> ()));
          if not (Code_cache.well_linked cc) then
            QCheck.Test.fail_report "dangling or stale chain link";
          if Code_cache.used_bundles cc > 12 then
            QCheck.Test.fail_report "capacity budget exceeded")
        ops;
      true)

(* --- end to end --- *)

let tiny = 48 (* bundles: a handful of small traces, constant churn *)

let capped_config ?(chain = true) mode capacity =
  let config = Gb_system.Processor.config_for mode in
  let engine = config.Gb_system.Processor.engine in
  {
    config with
    Gb_system.Processor.engine =
      { engine with Gb_dbt.Engine.cache = { Code_cache.capacity; chain } };
  }

(* Two hot inner loops inside a hot outer loop: three regions that keep
   re-entering, so a cache too small for all of them evicts on every
   outer iteration instead of merely replacing one pc. *)
let loop_program n =
  let open Gb_riscv in
  let open Gb_riscv.Insn in
  Asm.assemble
    [
      Asm.Li (Reg.s1, Int64.of_int n);
      Asm.Li (Reg.s3, 0L);
      Asm.Li (Reg.t0, 0L);
      Asm.Label "outer";
      Asm.Li (Reg.s2, 0L);
      Asm.Label "a";
      Asm.Insn (Op (MUL, Reg.t1, Reg.s2, Reg.s2));
      Asm.Insn (Op (ADD, Reg.t0, Reg.t0, Reg.t1));
      Asm.Insn (Op_imm (ADDI, Reg.s2, Reg.s2, 1));
      Asm.Branch_to (BLT, Reg.s2, Reg.s1, "a");
      Asm.Li (Reg.s2, 0L);
      Asm.Label "b";
      Asm.Insn (Op (ADD, Reg.t0, Reg.t0, Reg.s2));
      Asm.Insn (Op_imm (XORI, Reg.t0, Reg.t0, 21));
      Asm.Insn (Op_imm (ADDI, Reg.s2, Reg.s2, 1));
      Asm.Branch_to (BLT, Reg.s2, Reg.s1, "b");
      Asm.Insn (Op_imm (ADDI, Reg.s3, Reg.s3, 1));
      Asm.Branch_to (BLT, Reg.s3, Reg.s1, "outer");
      Asm.Insn (Op_imm (ANDI, Reg.a0, Reg.t0, 255));
      Asm.Li (Reg.a7, 93L);
      Asm.Insn Ecall;
    ]

let eviction_churn_is_architecturally_invisible () =
  let program = loop_program 400 in
  let run config =
    Gb_system.Processor.run_program ~config program
  in
  let mode = Gb_core.Mitigation.Unsafe in
  (* 8 bundles cannot hold even one block next to the loop trace, so
     every promotion and re-entry evicts something *)
  let capacity = 8 in
  let reference = run (Gb_system.Processor.config_for mode) in
  let churned = run (capped_config mode capacity) in
  let unchained = run (capped_config ~chain:false mode capacity) in
  Alcotest.(check bool) "reference never evicts" true
    (reference.Gb_system.Processor.cc_evictions = 0);
  Alcotest.(check bool) "tiny cache actually churns" true
    (churned.Gb_system.Processor.cc_evictions > 0);
  Alcotest.(check int) "same exit code (chained)"
    reference.Gb_system.Processor.exit_code
    churned.Gb_system.Processor.exit_code;
  Alcotest.(check int) "same exit code (unchained)"
    reference.Gb_system.Processor.exit_code
    unchained.Gb_system.Processor.exit_code;
  (* chaining is host-side only: under the same (tiny) capacity, on/off
     must agree on the simulated cycle count, not just the result *)
  Alcotest.(check int64) "chaining costs no simulated cycles"
    unchained.Gb_system.Processor.cycles churned.Gb_system.Processor.cycles;
  Alcotest.(check bool) "and actually chained" true
    (Int64.compare churned.Gb_system.Processor.chain_follows 0L > 0)

let audit_fn_zero_under_churn () =
  (* the acceptance gate: fine-grained mitigation with chaining on and a
     cache small enough to evict constantly still shows zero audit false
     negatives and recovers no secret *)
  let secret = "GB!" in
  List.iter
    (fun (name, program) ->
      let o =
        Gb_attack.Runner.run
          ~config:(capped_config Gb_core.Mitigation.Fine_grained tiny)
          ~audit:true ~mode:Gb_core.Mitigation.Fine_grained ~secret program
      in
      let r = o.Gb_attack.Runner.result in
      Alcotest.(check bool) (name ^ ": cache churned") true
        (r.Gb_system.Processor.cc_evictions > 0);
      (match r.Gb_system.Processor.audit with
      | Some s ->
        Alcotest.(check int) (name ^ ": zero false negatives") 0
          s.Gb_cache.Audit.false_negatives
      | None -> Alcotest.fail (name ^ ": audit summary missing"));
      Alcotest.(check int) (name ^ ": nothing recovered") 0
        o.Gb_attack.Runner.correct_bytes)
    [
      ("v1", Gb_attack.Spectre_v1.program ~secret ());
      ("v4", Gb_attack.Spectre_v4.program ~secret ());
    ]

let () =
  Alcotest.run "code_cache"
    [
      ( "capacity",
        [
          Alcotest.test_case "budget respected, LRU evicts" `Quick
            capacity_respected;
          Alcotest.test_case "LRU picks the stalest entry" `Quick lru_victim;
          Alcotest.test_case "replacement is not an eviction" `Quick
            replacement_is_not_eviction;
          Alcotest.test_case "on_evict: capacity only, with tier" `Quick
            on_evict_fires_with_tier;
          Alcotest.test_case "retranslation gets a fresh generation" `Quick
            generations_are_fresh;
        ] );
      ( "chaining",
        [
          Alcotest.test_case "invalidate severs both directions" `Quick
            link_and_break_on_invalidate;
          Alcotest.test_case "eviction unlinks the survivor" `Quick
            eviction_unlinks;
          Alcotest.test_case "replacement unlinks predecessors" `Quick
            replacement_unlinks_predecessors;
          Alcotest.test_case "link guards" `Quick link_guards;
          Alcotest.test_case "mitigation-mode compatibility" `Quick
            mode_compatibility;
          QCheck_alcotest.to_alcotest qcheck_well_linked;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "eviction churn is architecturally invisible"
            `Quick eviction_churn_is_architecturally_invisible;
          Alcotest.test_case "audit FN=0 under churn (fine-grained)" `Quick
            audit_fn_zero_under_churn;
        ] );
    ]
